//! A tiny deterministic pseudo-random number generator.
//!
//! The build environment has no network access, so the `rand` crate is
//! unavailable; this crate provides the small slice of functionality
//! japrove needs — seeded, reproducible streams for the benchmark
//! generators ([`japrove_genbench`]) and for randomized tests — built
//! on the SplitMix64 mixer (Steele/Lea/Flood, OOPSLA 2014). It is
//! **not** cryptographically secure and never will be.
//!
//! [`japrove_genbench`]: ../japrove_genbench/index.html
//!
//! # Examples
//!
//! ```
//! use japrove_rng::SplitMix64;
//!
//! let mut rng = SplitMix64::seed_from_u64(42);
//! let a = rng.gen_range(0, 10);
//! assert!(a < 10);
//!
//! // Same seed, same stream.
//! let mut rng2 = SplitMix64::seed_from_u64(42);
//! assert_eq!(rng2.gen_range(0, 10), a);
//!
//! let mut v = vec![1, 2, 3, 4, 5];
//! rng.shuffle(&mut v);
//! v.sort_unstable();
//! assert_eq!(v, vec![1, 2, 3, 4, 5]);
//! ```

/// A SplitMix64 pseudo-random number generator.
///
/// Passes BigCrush as a 64-bit mixer, needs only a `u64` of state, and
/// cannot produce the pathological short cycles naive LCGs do — more
/// than enough for shuffling property lists and generating random
/// netlists in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// streams on every platform.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniformly distributed value in `[lo, hi)`. Uses Lemire's
    /// multiply-shift reduction; the modulo bias is at most 2^-64 per
    /// call, irrelevant at our range sizes.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        let span = hi - lo;
        lo + (((self.next_u64() as u128 * span as u128) >> 64) as u64)
    }

    /// A uniformly distributed `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_index(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range(lo as u64, hi as u64) as usize
    }

    /// A fair pseudo-random boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Shuffles `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(0, i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(5, 17);
            assert!((5..17).contains(&v));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = SplitMix64::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_index(0, 8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // With 50 elements the identity permutation is astronomically
        // unlikely; a fixed seed makes this assertion stable.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SplitMix64::seed_from_u64(4);
        let trues = (0..10_000).filter(|_| rng.gen_bool()).count();
        assert!((4_000..6_000).contains(&trues), "trues = {trues}");
    }
}
