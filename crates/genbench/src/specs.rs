//! Named benchmark specifications: scaled-down stand-ins for the
//! HWMCC'12/13 designs used in the paper's tables.
//!
//! Names follow the originals (`syn_6s400` stands in for `6s400`);
//! property counts and depths are scaled so every table regenerates in
//! minutes on a laptop. The structural features driving each table's
//! effect are preserved — see DESIGN.md §5.

use crate::FamilyParams;

/// Designs with a very large number of properties (Table II).
///
/// The aggregate property of these designs spans many unrelated cones
/// and contains a deeply-failing (shadowed) property, which is what
/// makes joint verification collapse while JA stays robust.
pub fn many_props_specs() -> Vec<FamilyParams> {
    vec![
        FamilyParams::new("syn_6s400", 400)
            .chain(24, 8)
            .easy_true(24)
            .ring(8, 12)
            .shallow_fails(vec![2, 3])
            .shadow_group(2, vec![2500, 8000]),
        FamilyParams::new("syn_6s355", 355)
            .chain(30, 6)
            .easy_true(20)
            .shallow_fails(vec![2])
            .shadow_group(3, vec![3000]),
        FamilyParams::new("syn_6s289", 289)
            .chain(36, 6)
            .easy_true(12)
            .ring(6, 8)
            .shadow_group(2, vec![2000]),
        FamilyParams::new("syn_6s403", 403)
            .chain(20, 5)
            .easy_true(30),
    ]
}

/// Designs with failing properties (Tables III, V, VIII).
///
/// Many properties are false globally but true locally; the debugging
/// sets are small, matching the paper's headline effect.
pub fn failing_specs() -> Vec<FamilyParams> {
    vec![
        FamilyParams::new("syn_6s104", 104)
            .chain(5, 8)
            .easy_true(4)
            .shadow_group(3, vec![300, 6000]),
        FamilyParams::new("syn_6s260", 260)
            .easy_true(8)
            .ring(6, 4)
            .shadow_group(2, vec![400]),
        FamilyParams::new("syn_6s258", 258)
            .chain(6, 6)
            .easy_true(5)
            .shadow_group(2, vec![150, 200, 250, 300, 350, 400, 450, 500]),
        FamilyParams::new("syn_6s175", 175)
            .easy_true(1)
            .shallow_fails(vec![2, 4]),
        FamilyParams::new("syn_6s207", 207)
            .easy_true(10)
            .chain(4, 6)
            .shadow_group(2, vec![250, 350])
            .shadow_group(3, vec![300]),
        FamilyParams::new("syn_6s254", 254)
            .easy_true(7)
            .ring(6, 6)
            .shallow_fails(vec![2]),
        FamilyParams::new("syn_6s335", 335)
            .easy_true(10)
            .chain(8, 6)
            .shallow_fails(vec![2, 2, 3, 3, 4])
            .shadow_group(2, vec![200, 300, 400]),
        FamilyParams::new("syn_6s380", 380)
            .chain(12, 6)
            .easy_true(10)
            .ring(8, 8)
            .shallow_fails(vec![2, 3, 4])
            .shadow_group(2, vec![150, 200, 250, 300, 350, 400, 450, 500, 550, 6000]),
    ]
}

/// Designs where every property is true (Tables IV, VI, VII, IX).
pub fn all_true_specs() -> Vec<FamilyParams> {
    vec![
        FamilyParams::new("syn_6s124", 124)
            .chain(16, 8)
            .easy_true(8)
            .sinks(14, 24),
        FamilyParams::new("syn_6s135", 135)
            .ring(10, 20)
            .easy_true(6)
            .sinks(10, 18),
        FamilyParams::new("syn_6s139", 139)
            .chain(12, 12)
            .ring(8, 6)
            .sinks(16, 28),
        FamilyParams::new("syn_6s256", 256)
            .chain(2, 10)
            .easy_true(1),
        FamilyParams::new("syn_bob12m09", 1209)
            .ring(8, 10)
            .easy_true(8)
            .chain(4, 6)
            .sinks(8, 12),
        FamilyParams::new("syn_6s407", 407)
            .chain(14, 8)
            .easy_true(12)
            .ring(6, 6)
            .sinks(18, 30),
        FamilyParams::new("syn_6s273", 273)
            .easy_true(10)
            .chain(4, 5),
        FamilyParams::new("syn_6s275", 275)
            .ring(12, 24)
            .easy_true(12)
            .chain(6, 6)
            .sinks(12, 20),
    ]
}

/// The single-property probe design of Table X (stand-in for 6s289
/// with 10,789 properties): a long assumption-network chain where
/// global proofs need several frames but local proofs converge
/// immediately.
pub fn probe_spec() -> FamilyParams {
    FamilyParams::new("syn_6s289_probe", 2890)
        .chain(40, 10)
        .easy_true(10)
}

/// A heavier all-true design for the parallel-scaling experiment of
/// §11: per-property work is large enough that thread overheads are
/// negligible.
pub fn parallel_spec() -> FamilyParams {
    FamilyParams::new("syn_parallel", 1111)
        .chain(24, 120)
        .ring(14, 28)
        .easy_true(8)
}

/// Looks up a named benchmark spec across every list in this module
/// (the CLI's `--gen <name>` resolver). `None` if no spec has that
/// name; [`spec_names`] lists the valid ones.
pub fn spec_by_name(name: &str) -> Option<FamilyParams> {
    all_specs().into_iter().find(|s| s.name == name)
}

/// The names of every benchmark spec, in registration order.
pub fn spec_names() -> Vec<String> {
    all_specs().into_iter().map(|s| s.name).collect()
}

/// Resolves a family name to its spec, or explains what *would* have
/// worked: the error message lists every available family, so a typo
/// on `--gen`/`--mine` never leaves the user guessing.
pub fn resolve_spec(name: &str) -> Result<FamilyParams, String> {
    spec_by_name(name).ok_or_else(|| {
        format!(
            "unknown benchmark family '{name}' (available: {})",
            spec_names().join(", ")
        )
    })
}

fn all_specs() -> Vec<FamilyParams> {
    let mut specs = many_props_specs();
    specs.extend(failing_specs());
    specs.extend(all_true_specs());
    specs.push(probe_spec());
    specs.push(parallel_spec());
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_generate_consistent_designs() {
        for spec in failing_specs().into_iter().chain(all_true_specs()) {
            let d = spec.generate();
            assert_eq!(
                d.sys.num_properties(),
                spec.num_properties(),
                "{}",
                spec.name
            );
            assert!(d.sys.num_properties() > 0);
        }
    }

    #[test]
    fn all_true_specs_have_no_expected_failures() {
        for spec in all_true_specs() {
            let d = spec.generate();
            assert_eq!(d.expected_global_failures(), 0, "{}", spec.name);
        }
    }

    #[test]
    fn failing_specs_have_small_debugging_sets() {
        for spec in failing_specs() {
            let d = spec.generate();
            let debug = d.expected_debugging_set().len();
            let failures = d.expected_global_failures();
            assert!(debug >= 1, "{}", spec.name);
            assert!(debug <= failures, "{}", spec.name);
        }
    }

    #[test]
    fn spec_lookup_finds_every_name_exactly_once() {
        let names = spec_names();
        for name in &names {
            let spec = spec_by_name(name).expect("listed name resolves");
            assert_eq!(&spec.name, name);
        }
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), names.len(), "duplicate spec name");
        assert!(spec_by_name("no_such_design").is_none());
    }

    #[test]
    fn resolver_error_lists_every_family() {
        assert_eq!(
            resolve_spec("syn_6s275").expect("known family").name,
            "syn_6s275"
        );
        let err = resolve_spec("syn_typo").expect_err("unknown family");
        assert!(err.contains("unknown benchmark family 'syn_typo'"), "{err}");
        for name in spec_names() {
            assert!(err.contains(&name), "error omits family {name}: {err}");
        }
    }

    #[test]
    fn probe_spec_is_all_true() {
        let d = probe_spec().generate();
        assert_eq!(d.expected_global_failures(), 0);
        assert!(d.sys.num_properties() >= 80);
    }
}
