//! Synthetic multi-property benchmark designs.
//!
//! The HWMCC'12/13 multi-property AIGER suites evaluated in the paper
//! are not redistributable here, so this crate generates stand-in
//! designs exhibiting the same decisive structural features:
//!
//! * [`buggy_counter`] — the paper's Example 1 (Table I),
//! * [`FamilyParams`] / [`GeneratedDesign`] — a parameterized family
//!   with per-property *ground truth* ([`Expected`]), combining
//!   trivially-true registers, one-hot token rings (clause-sharing
//!   true properties), assumption-network chains (cheap local / costly
//!   global proofs), independent shallow failures (debugging-set
//!   members) and shadowed deep failures (false globally, true
//!   locally),
//! * [`many_props_specs`], [`failing_specs`], [`all_true_specs`],
//!   [`probe_spec`] — the named design lists regenerating Tables
//!   II–X.
//!
//! # Examples
//!
//! ```
//! use japrove_genbench::{buggy_counter, FamilyParams};
//!
//! let (sys, props) = buggy_counter(8);
//! assert_eq!(sys.num_properties(), 2);
//!
//! let design = FamilyParams::new("demo", 1)
//!     .easy_true(2)
//!     .shadow_group(2, vec![10])
//!     .generate();
//! assert_eq!(design.expected_debugging_set().len(), 1);
//! ```

mod counter;
mod family;
mod specs;

pub use counter::{buggy_counter, CounterProps};
pub use family::{Expected, FamilyParams, GeneratedDesign};
pub use specs::{
    all_true_specs, failing_specs, many_props_specs, parallel_spec, probe_spec, resolve_spec,
    spec_by_name, spec_names,
};
