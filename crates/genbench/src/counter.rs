//! The buggy counter of the paper's Example 1.

use japrove_aig::Aig;
use japrove_tsys::{PropertyId, TransitionSystem, Word};

/// The two properties of the Example-1 counter.
#[derive(Clone, Copy, Debug)]
pub struct CounterProps {
    /// `P0: assert property (req == 1)` — fails globally in every time
    /// frame (and locally: it is the debugging set).
    pub p0: PropertyId,
    /// `P1: assert property (val <= rval)` — fails globally with a
    /// counterexample of length `rval + 1`, but holds locally under
    /// the assumption `P0 == 1`.
    pub p1: PropertyId,
}

/// Builds the Verilog counter of Example 1 at the given width.
///
/// The counter increments while `enable` is set; the *buggy* reset
/// logic only clears it at `rval = 1 << (bits - 1)` when `req` is also
/// set, so `val` can overshoot `rval`.
///
/// # Panics
///
/// Panics if `bits < 2`.
///
/// # Examples
///
/// ```
/// use japrove_genbench::buggy_counter;
/// let (sys, props) = buggy_counter(8);
/// assert_eq!(sys.num_properties(), 2);
/// assert_eq!(sys.property(props.p0).name, "P0_req_high");
/// ```
pub fn buggy_counter(bits: usize) -> (TransitionSystem, CounterProps) {
    assert!(bits >= 2, "counter needs at least 2 bits");
    let mut aig = Aig::new();
    let enable = aig.add_input();
    let req = aig.add_input();
    let rval = 1u64 << (bits - 1);
    let val = Word::latches(&mut aig, bits, 0);
    let at_rval = val.eq_const(&mut aig, rval);
    // Buggy line: reset = ((val == rval) && req) — should not need req.
    let reset = aig.and(at_rval, req);
    let inc = val.increment(&mut aig);
    let zero = Word::constant(&mut aig, 0, bits);
    let updated = Word::mux(&mut aig, reset, &zero, &inc);
    let next = Word::mux(&mut aig, enable, &updated, &val);
    val.set_next(&mut aig, &next);
    let le_rval = val.le_const(&mut aig, rval);
    let mut sys = TransitionSystem::new(format!("counter{bits}"), aig);
    let p0 = sys.add_property("P0_req_high", req);
    let p1 = sys.add_property("P1_val_le_rval", le_rval);
    (sys, CounterProps { p0, p1 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use japrove_aig::Simulator;

    #[test]
    fn overshoots_rval_without_req() {
        let (sys, _) = buggy_counter(4);
        let aig = sys.aig();
        let mut sim = Simulator::new(aig);
        // enable=1, req=0 for 9 cycles: val reaches 9 > rval=8.
        for _ in 0..9 {
            sim.step(aig, &[u64::MAX, 0]);
        }
        let val: u64 = sim
            .state()
            .iter()
            .enumerate()
            .map(|(i, &w)| (w & 1) << i)
            .sum();
        assert_eq!(val, 9);
    }

    #[test]
    fn resets_at_rval_with_req() {
        let (sys, _) = buggy_counter(4);
        let aig = sys.aig();
        let mut sim = Simulator::new(aig);
        for _ in 0..8 {
            sim.step(aig, &[u64::MAX, u64::MAX]);
        }
        // val hit rval=8 and resets on the next enabled cycle.
        sim.step(aig, &[u64::MAX, u64::MAX]);
        let val: u64 = sim
            .state()
            .iter()
            .enumerate()
            .map(|(i, &w)| (w & 1) << i)
            .sum();
        assert_eq!(val, 0);
    }

    #[test]
    #[should_panic(expected = "at least 2 bits")]
    fn tiny_counter_rejected() {
        let _ = buggy_counter(1);
    }
}
