//! Synthetic multi-property design families.
//!
//! Stand-ins for the HWMCC'12/13 multi-property benchmarks used in the
//! paper (which cannot be redistributed here). Each generator knob
//! corresponds to a structural feature the paper identifies as
//! decisive for the relative performance of joint, separate-global and
//! JA-verification — see DESIGN.md §5 for the substitution argument.

use japrove_aig::{Aig, AigLit};
use japrove_rng::SplitMix64;
use japrove_tsys::{PropertyId, TransitionSystem, Word};

/// Ground truth for a generated property.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Expected {
    /// Holds globally (hence locally).
    True,
    /// Fails globally at exactly this depth, with no earlier violation
    /// of any other property on its counterexamples of minimal depth —
    /// it belongs to the debugging set.
    FailsAt(usize),
    /// Fails globally, but every counterexample first violates the
    /// guard property — it holds *locally* (not in the debugging set).
    ShadowedFailsAt {
        /// Depth of the earliest guard violation on any witness.
        guard_depth: usize,
        /// Depth of this property's own earliest violation.
        own_depth: usize,
    },
}

impl Expected {
    /// `true` if the property holds globally.
    pub fn holds_globally(self) -> bool {
        self == Expected::True
    }

    /// `true` if the property belongs to the debugging set (fails
    /// locally).
    pub fn fails_locally(self) -> bool {
        matches!(self, Expected::FailsAt(_))
    }
}

/// Parameters of a generated design.
///
/// # Examples
///
/// ```
/// use japrove_genbench::FamilyParams;
/// let params = FamilyParams::new("demo", 7).easy_true(3).shallow_fails(vec![2]);
/// let design = params.generate();
/// assert_eq!(design.sys.num_properties(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct FamilyParams {
    /// Design name (stand-in benchmarks use `syn_*` names).
    pub name: String,
    /// Seed controlling the interleaving of property kinds.
    pub seed: u64,
    /// Trivially inductive true properties (a register that stays 0).
    pub num_easy_true: usize,
    /// Size of the shared one-hot token ring (0 disables it).
    pub ring_size: usize,
    /// True properties on the ring (`!(t_a & t_b)` pairs) — they share
    /// strengthening clauses, the clause re-use sweet spot (§6).
    pub num_ring_props: usize,
    /// Assumption-network modules. Each contributes two true
    /// properties: a *flag* property needing an invariant over its
    /// wrapping counter, and a *sink* property that is trivial under
    /// the neighbour's flag assumption but needs the neighbour's
    /// invariant globally (the Table X effect).
    pub num_chain_modules: usize,
    /// Wrap value of the chain counters.
    pub chain_wrap: u64,
    /// Depths of independently-failing shallow properties (each on its
    /// own input-enabled counter — all of them are in the debugging
    /// set).
    pub shallow_fail_depths: Vec<u64>,
    /// Ring-sink monitors: `(ring_size, num_sinks)`. A *separate*,
    /// property-free one-hot token ring plus sticky monitor bits that
    /// absorb "two tokens at adjacent slots" events. Each monitor
    /// property is true, but its proof must *derive* the ring's
    /// one-hot invariant — the assumptions of local proofs do not
    /// cover it. Proofs of different monitors share most strengthening
    /// clauses: the clause re-use sweet spot of Table VII.
    pub ring_sinks: Option<(usize, usize)>,
    /// Shadow groups: `(guard_depth, own_extra_depths)`. Each group
    /// adds one guard property failing at `guard_depth` plus one
    /// shadowed property per extra depth, failing at `guard_depth +
    /// extra` but only after the guard — shadowed properties hold
    /// locally.
    pub shadow_groups: Vec<(u64, Vec<u64>)>,
}

impl FamilyParams {
    /// A named, empty parameter set.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        FamilyParams {
            name: name.into(),
            seed,
            num_easy_true: 0,
            ring_size: 0,
            num_ring_props: 0,
            num_chain_modules: 0,
            chain_wrap: 10,
            ring_sinks: None,
            shallow_fail_depths: Vec::new(),
            shadow_groups: Vec::new(),
        }
    }

    /// Sets the number of trivially-true properties.
    pub fn easy_true(mut self, n: usize) -> Self {
        self.num_easy_true = n;
        self
    }

    /// Enables the token ring with the given size and property count.
    pub fn ring(mut self, size: usize, props: usize) -> Self {
        self.ring_size = size;
        self.num_ring_props = props;
        self
    }

    /// Sets the number of assumption-network modules.
    pub fn chain(mut self, modules: usize, wrap: u64) -> Self {
        self.num_chain_modules = modules;
        self.chain_wrap = wrap;
        self
    }

    /// Enables the ring-sink monitors.
    pub fn sinks(mut self, ring_size: usize, num: usize) -> Self {
        self.ring_sinks = Some((ring_size, num));
        self
    }

    /// Sets the shallow-failure depths.
    pub fn shallow_fails(mut self, depths: Vec<u64>) -> Self {
        self.shallow_fail_depths = depths;
        self
    }

    /// Adds a shadow group.
    pub fn shadow_group(mut self, guard_depth: u64, extras: Vec<u64>) -> Self {
        self.shadow_groups.push((guard_depth, extras));
        self
    }

    /// Total number of properties this parameter set generates.
    pub fn num_properties(&self) -> usize {
        self.num_easy_true
            + self.num_ring_props
            + 2 * self.num_chain_modules
            + self.ring_sinks.map_or(0, |(_, n)| n)
            + self.shallow_fail_depths.len()
            + self
                .shadow_groups
                .iter()
                .map(|(_, extras)| 1 + extras.len())
                .sum::<usize>()
    }

    /// Generates the design.
    pub fn generate(&self) -> GeneratedDesign {
        generate(self)
    }
}

/// A generated design with its ground truth.
#[derive(Clone, Debug)]
pub struct GeneratedDesign {
    /// The multi-property system.
    pub sys: TransitionSystem,
    /// Ground truth per property (aligned with property ids).
    pub expected: Vec<Expected>,
}

impl GeneratedDesign {
    /// Property ids expected to be in the debugging set.
    pub fn expected_debugging_set(&self) -> Vec<PropertyId> {
        self.expected
            .iter()
            .enumerate()
            .filter(|(_, e)| e.fails_locally())
            .map(|(i, _)| PropertyId::new(i))
            .collect()
    }

    /// Number of properties expected to fail globally.
    pub fn expected_global_failures(&self) -> usize {
        self.expected.iter().filter(|e| !e.holds_globally()).count()
    }
}

/// Width needed to count to `max` without wrapping.
fn width_for(max: u64) -> usize {
    (64 - (max + 2).leading_zeros()) as usize
}

/// A saturating counter gated by a fresh enable input; returns the
/// word.
fn gated_saturating_counter(aig: &mut Aig, width: usize, gate: AigLit) -> Word {
    let c = Word::latches(aig, width, 0);
    let max = (1u64 << width) - 1;
    let at_max = c.eq_const(aig, max);
    let inc = c.increment(aig);
    let held = Word::mux(aig, at_max, &c, &inc);
    let next = Word::mux(aig, gate, &held, &c);
    c.set_next(aig, &next);
    c
}

/// Candidate property in generation order before shuffling.
enum Pending {
    Prop {
        name: String,
        good: AigLit,
        expected: Expected,
    },
}

fn generate(params: &FamilyParams) -> GeneratedDesign {
    let mut aig = Aig::new();
    let mut pending: Vec<Pending> = Vec::new();

    // Trivially-true registers.
    for i in 0..params.num_easy_true {
        let gate = aig.add_input();
        let z = aig.add_latch(false);
        let nz = aig.and(z, gate); // stays 0 forever
        aig.set_next(z, nz);
        pending.push(Pending::Prop {
            name: format!("easy_true_{i}"),
            good: !z,
            expected: Expected::True,
        });
    }

    // Shared one-hot token ring.
    if params.ring_size > 0 {
        let tokens: Vec<AigLit> = (0..params.ring_size)
            .map(|i| aig.add_latch(i == 0))
            .collect();
        for i in 0..params.ring_size {
            let prev = tokens[(i + params.ring_size - 1) % params.ring_size];
            aig.set_next(tokens[i], prev);
        }
        for i in 0..params.num_ring_props {
            let a = i % params.ring_size;
            let b = (i / params.ring_size + 1 + i) % params.ring_size;
            let b = if a == b {
                (b + 1) % params.ring_size
            } else {
                b
            };
            let both = aig.and(tokens[a], tokens[b]);
            pending.push(Pending::Prop {
                name: format!("ring_excl_{a}_{b}"),
                good: !both,
                expected: Expected::True,
            });
        }
    }

    // Assumption-network chain: module i's sink watches module
    // (i-1)'s flag.
    if params.num_chain_modules > 0 {
        let wrap = params.chain_wrap;
        let width = width_for(wrap + 1);
        let mut flags = Vec::with_capacity(params.num_chain_modules);
        for _ in 0..params.num_chain_modules {
            let c = Word::latches(&mut aig, width, 0);
            let at_wrap = c.eq_const(&mut aig, wrap);
            let inc = c.increment(&mut aig);
            let zero = Word::constant(&mut aig, 0, width);
            let next = Word::mux(&mut aig, at_wrap, &zero, &inc);
            c.set_next(&mut aig, &next);
            // The flag can only rise if the counter escapes [0, wrap].
            let flag = c.ge_const(&mut aig, wrap + 1);
            flags.push(flag);
        }
        for i in 0..params.num_chain_modules {
            let neighbour = flags[(i + params.num_chain_modules - 1) % params.num_chain_modules];
            // Sink: sticky bit absorbing the neighbour's flag.
            let s = aig.add_latch(false);
            let ns = aig.or(s, neighbour);
            aig.set_next(s, ns);
            pending.push(Pending::Prop {
                name: format!("chain_flag_{i}"),
                good: !flags[i],
                expected: Expected::True,
            });
            pending.push(Pending::Prop {
                name: format!("chain_sink_{i}"),
                good: !s,
                expected: Expected::True,
            });
        }
    }

    // Ring-sink monitors over a dedicated, property-free token ring.
    if let Some((size, num)) = params.ring_sinks {
        let tokens: Vec<AigLit> = (0..size).map(|i| aig.add_latch(i == 0)).collect();
        for i in 0..size {
            let prev = tokens[(i + size - 1) % size];
            aig.set_next(tokens[i], prev);
        }
        for m in 0..num {
            let a = m % size;
            let b = (a + 1 + m / size) % size;
            let event = aig.and(tokens[a], tokens[b]);
            let s = aig.add_latch(false);
            let ns = aig.or(s, event);
            aig.set_next(s, ns);
            pending.push(Pending::Prop {
                name: format!("ring_sink_{m}"),
                good: !s,
                expected: Expected::True,
            });
        }
    }

    // Independent shallow failures, each gated by its own input so no
    // failure shadows another.
    for (i, &depth) in params.shallow_fail_depths.iter().enumerate() {
        let gate = aig.add_input();
        let c = gated_saturating_counter(&mut aig, width_for(depth + 1), gate);
        let good = c.lt_const(&mut aig, depth);
        pending.push(Pending::Prop {
            name: format!("shallow_fail_{i}_d{depth}"),
            good,
            expected: Expected::FailsAt(depth as usize),
        });
    }

    // Shadow groups: one guard plus its shadowed sinks.
    for (g, (guard_depth, extras)) in params.shadow_groups.iter().enumerate() {
        let gate = aig.add_input();
        let c = gated_saturating_counter(
            &mut aig,
            width_for(guard_depth + extras.iter().copied().max().unwrap_or(0) + 2),
            gate,
        );
        let guard_good = c.lt_const(&mut aig, *guard_depth);
        pending.push(Pending::Prop {
            name: format!("guard_{g}_d{guard_depth}"),
            good: guard_good,
            expected: Expected::FailsAt(*guard_depth as usize),
        });
        for (j, &extra) in extras.iter().enumerate() {
            // Fails once the shared counter passes guard_depth + extra:
            // by then the guard property has been violated for `extra`
            // steps already.
            let own = guard_depth + extra;
            let good = c.lt_const(&mut aig, own);
            pending.push(Pending::Prop {
                name: format!("shadow_{g}_{j}_d{own}"),
                good,
                expected: Expected::ShadowedFailsAt {
                    guard_depth: *guard_depth as usize,
                    own_depth: own as usize,
                },
            });
        }
    }

    // Interleave property kinds pseudo-randomly but reproducibly.
    let mut rng = SplitMix64::seed_from_u64(params.seed);
    rng.shuffle(&mut pending);

    let mut sys = TransitionSystem::new(params.name.clone(), aig);
    let mut expected = Vec::with_capacity(pending.len());
    for p in pending {
        let Pending::Prop {
            name,
            good,
            expected: e,
        } = p;
        sys.add_property(name, good);
        expected.push(e);
    }
    GeneratedDesign { sys, expected }
}

#[cfg(test)]
mod tests {
    use super::*;
    use japrove_aig::Simulator;

    #[test]
    fn property_count_matches_params() {
        let params = FamilyParams::new("t", 1)
            .easy_true(2)
            .ring(5, 3)
            .chain(2, 6)
            .shallow_fails(vec![2, 4])
            .shadow_group(3, vec![5, 9]);
        assert_eq!(params.num_properties(), 2 + 3 + 4 + 2 + 3);
        let design = params.generate();
        assert_eq!(design.sys.num_properties(), params.num_properties());
        assert_eq!(design.expected.len(), params.num_properties());
    }

    #[test]
    fn generation_is_deterministic() {
        let params = FamilyParams::new("t", 42)
            .easy_true(2)
            .shallow_fails(vec![3]);
        let a = params.generate();
        let b = params.generate();
        let names_a: Vec<&str> = a.sys.properties().iter().map(|p| p.name.as_str()).collect();
        let names_b: Vec<&str> = b.sys.properties().iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names_a, names_b);
        assert_eq!(a.expected, b.expected);
    }

    #[test]
    fn shallow_failures_occur_at_expected_depth() {
        let params = FamilyParams::new("t", 3).shallow_fails(vec![3]);
        let design = params.generate();
        let sys = &design.sys;
        let aig = sys.aig();
        let mut sim = Simulator::new(aig);
        let prop = &sys.properties()[0];
        // All-enables-on run: failure exactly at depth 3.
        for step in 0..5u64 {
            let good = sim.value_bit(prop.good);
            assert_eq!(good, step < 3, "step {step}");
            sim.step(aig, &vec![u64::MAX; aig.num_inputs()]);
        }
    }

    #[test]
    fn shadowed_failures_follow_guard() {
        let params = FamilyParams::new("t", 9).shadow_group(2, vec![3]);
        let design = params.generate();
        let sys = &design.sys;
        let aig = sys.aig();
        let guard = sys
            .properties()
            .iter()
            .position(|p| p.name.starts_with("guard"))
            .expect("guard");
        let shadow = sys
            .properties()
            .iter()
            .position(|p| p.name.starts_with("shadow"))
            .expect("shadow");
        let mut sim = Simulator::new(aig);
        let mut first_guard = None;
        let mut first_shadow = None;
        for step in 0..10usize {
            if first_guard.is_none() && !sim.value_bit(sys.properties()[guard].good) {
                first_guard = Some(step);
            }
            if first_shadow.is_none() && !sim.value_bit(sys.properties()[shadow].good) {
                first_shadow = Some(step);
            }
            sim.step(aig, &vec![u64::MAX; aig.num_inputs()]);
        }
        assert_eq!(first_guard, Some(2));
        assert_eq!(first_shadow, Some(5));
    }

    #[test]
    fn ring_tokens_stay_one_hot() {
        let params = FamilyParams::new("t", 5).ring(6, 4);
        let design = params.generate();
        let aig = design.sys.aig();
        let mut sim = Simulator::new(aig);
        for _ in 0..12 {
            let ones: u32 = sim.state().iter().map(|&w| (w & 1) as u32).sum();
            assert_eq!(ones, 1);
            sim.step(aig, &vec![0; aig.num_inputs()]);
        }
    }

    #[test]
    fn ring_sink_monitors_stay_low() {
        let params = FamilyParams::new("t", 11).sinks(8, 12);
        let design = params.generate();
        assert_eq!(design.sys.num_properties(), 12);
        let sys = &design.sys;
        let aig = sys.aig();
        let mut sim = japrove_aig::Simulator::new(aig);
        for _ in 0..3 * 8 {
            for p in sys.properties() {
                assert!(sim.value_bit(p.good), "{} violated", p.name);
            }
            sim.step(aig, &vec![0; aig.num_inputs()]);
        }
    }

    #[test]
    fn chain_properties_are_true_in_simulation() {
        let params = FamilyParams::new("t", 8).chain(3, 5);
        let design = params.generate();
        let sys = &design.sys;
        let aig = sys.aig();
        let mut sim = Simulator::new(aig);
        for _ in 0..20 {
            for p in sys.properties() {
                assert!(sim.value_bit(p.good), "{} violated", p.name);
            }
            sim.step(aig, &vec![u64::MAX; aig.num_inputs()]);
        }
    }
}
