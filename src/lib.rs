//! # japrove
//!
//! A multi-property hardware model checker reproducing
//! *"Efficient Verification of Multi-Property Designs (The Benefit of
//! Wrong Assumptions)"* (Goldberg, Güdemann, Kroening, Mukherjee —
//! DATE 2018).
//!
//! This facade re-exports the whole stack:
//!
//! * [`logic`] — literals, clauses, cubes, CNF, DIMACS,
//! * [`sat`] — incremental SAT solving: the CDCL solver, the
//!   chronological-backtracking variant, and the [`sat::SatBackend`]
//!   abstraction the engines select per property,
//! * [`aig`] — And-Inverter Graphs, AIGER 1.9 I/O, simulation,
//! * [`tsys`] — transition systems, properties, traces, replay,
//! * [`ic3`] — IC3/PDR, BMC and joint k-induction engines with
//!   certificates,
//! * [`mine`] — property mining: guess candidate invariants from
//!   simulation, filter them by deeper simulation, promote survivors
//!   by k-induction,
//! * [`core`] — JA-verification, joint verification, clause re-use,
//!   debugging sets, parallel drivers, mining composition,
//! * [`genbench`] — synthetic multi-property benchmark designs,
//! * [`obs`] — the run journal: structured tracing, per-phase
//!   metrics and the cross-run feature store.
//!
//! # Quickstart
//!
//! ```
//! use japrove::core::{ja_verify, SeparateOptions};
//! use japrove::genbench::buggy_counter;
//!
//! // The paper's Example 1: an 8-bit counter with a buggy reset.
//! let (sys, props) = buggy_counter(8);
//! let report = ja_verify(&sys, &SeparateOptions::local());
//!
//! // P0 (req == 1) is the debugging set; P1 holds locally.
//! assert_eq!(report.debugging_set(), vec![props.p0]);
//! assert!(report.result(props.p1).unwrap().holds());
//! ```

pub use japrove_aig as aig;
pub use japrove_core as core;
pub use japrove_genbench as genbench;
pub use japrove_ic3 as ic3;
pub use japrove_logic as logic;
pub use japrove_mine as mine;
pub use japrove_obs as obs;
pub use japrove_sat as sat;
pub use japrove_tsys as tsys;
