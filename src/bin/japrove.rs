//! The japrove command-line front-end: the equivalent of the paper's
//! `Ja-ver`/`Jnt-ver` driver scripts (§7).
//!
//! Reads a (multi-property) AIGER design, runs the selected
//! verification mode and prints a per-property report plus the
//! debugging set; optionally writes AIGER witnesses for every failing
//! property.

use japrove::core::{
    enumerate_report, grouped_verify, local_assumptions, mine_verify, validate_debugging_set,
    AffinityMetric, ClusteredOptions, CostModel, EnumOptions, GroupingOptions, JointOptions,
    MultiReport, Projection, SchedulePolicy, SeparateOptions, Session, VerdictCache,
};
use japrove::ic3::Lifting;
use japrove::mine::MineOptions;
use japrove::obs::json::Value;
use japrove::obs::metrics::{phase_breakdown, render_breakdown};
use japrove::obs::{journal::parse_jsonl, FeatureStore, Journal, Phase, RunRecord};
use japrove::sat::BackendChoice;
use japrove::tsys::{write_witness, TransitionSystem};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
japrove — multi-property model checking with JA-verification (DATE'18)

USAGE:
    japrove [OPTIONS] <design.aag|design.aig>
    japrove [OPTIONS] --gen <family>
    japrove --check-trace <trace.jsonl>

OPTIONS:
    --mode <ja|joint|separate-global|grouped|clustered|parallel|parallel-global>
                              verification driver [default: ja]
    --affinity <jaccard|hybrid> affinity metric for --mode clustered
                              [default: hybrid]
    --threads <N>             workers for the parallel and clustered
                              modes [default: 2]
    --schedule <steal|fifo|learned>
                              parallel dispatch: incremental work-stealing,
                              the cold FIFO baseline, or stealing over a
                              cost-model dispatch order [default: steal]
    --backend <cdcl|chrono>   SAT backend for every engine run
                              [default: cdcl]
    --per-property <SECS>     time limit per property
    --total <SECS>            time limit for the whole design
    --property-timeout <SECS> soft per-property watchdog: a check that
                              exceeds it is re-queued after every other
                              property with a doubled budget before the
                              unknown verdict sticks
    --retries <N>             supervised retry attempts for a faulted
                              (engine panic) or watchdog-timed-out
                              property [default: 1]
    --lifting <ignore|respect> state-lifting mode (§7-A) [default: ignore]
    --no-reuse                disable clause re-use (§6)
    --gen <family>            verify a generated benchmark design (by
                              spec name, e.g. syn_6s260) instead of a file
    --mine                    mine candidate invariants (const, equiv,
                              implication, one-hot, range) from the design
                              and verify the k-induction survivors as the
                              property workload
    --mine-depth <K>          induction depth for --mine promotion
                              [default: 2]
    --enum                    after the verdicts settle, enumerate
                              distinct counterexamples for every
                              falsified property (blocking clauses over
                              the --projection set; every witness is
                              replay-checked)
    --enum-max <N>            cap on enumerated counterexamples per
                              property [default: 16]
    --count                   XOR-hash estimate [lo, hi] of the number
                              of distinct failing --projection
                              assignments per falsified property
    --projection <inputs|latches>
                              what two counterexamples must differ on:
                              the whole input stimulus, or the final
                              state of the property cone's latch
                              support [default: inputs]
    --trace-out <FILE>        write the run journal as JSONL
    --metrics                 print the per-phase time breakdown
    --json <FILE>             write the report (with per-property solver
                              stats) as JSON
    --feature-store <FILE>    merge per-property cost records into a
                              persistent JSONL feature store
    --cost-model <FILE>       feature store to read per-property cost
                              predictions from (defaults to the
                              --feature-store file when given)
    --verdict-cache <FILE>    read/write a verdict cache keyed by
                              (cone structural hash, property); warm
                              hits re-certify the stored evidence
                              instead of re-solving
    --check-trace <FILE>      validate a JSONL trace against the event
                              schema and exit
    --fault-plan <SPEC>       deterministic fault injection: ';'-separated
                              clauses panic@SITE:RATE, delay@SITE:RATE:MILLIS
                              or truncate@SITE:RATE:BYTES (sites: check_one,
                              joint_attempt, enum_round,
                              feature_store_save, verdict_cache_save)
    --fault-seed <N>          seed for --fault-plan decisions [default: 0]
    --witness-dir <DIR>       write AIGER witnesses for failing properties
    --validate                re-check the debugging-set guarantees
    -q, --quiet               only print the summary line
    -h, --help                show this help
";

/// The set of `--mode` values, in the order USAGE lists them.
const MODES: &[&str] = &[
    "ja",
    "joint",
    "separate-global",
    "grouped",
    "clustered",
    "parallel",
    "parallel-global",
];

struct Cli {
    path: String,
    gen: Option<String>,
    mine: bool,
    mine_depth: Option<usize>,
    enumerate: bool,
    count: bool,
    enum_max: usize,
    projection: Projection,
    mode: String,
    affinity: AffinityMetric,
    threads: usize,
    schedule: SchedulePolicy,
    backend: BackendChoice,
    per_property: Option<Duration>,
    total: Option<Duration>,
    property_timeout: Option<Duration>,
    retries: Option<usize>,
    fault_plan: Option<String>,
    fault_seed: u64,
    lifting: Lifting,
    reuse: bool,
    trace_out: Option<String>,
    metrics: bool,
    json_out: Option<String>,
    feature_store: Option<String>,
    cost_model: Option<String>,
    verdict_cache: Option<String>,
    check_trace: Option<String>,
    witness_dir: Option<String>,
    validate: bool,
    quiet: bool,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        path: String::new(),
        gen: None,
        mine: false,
        mine_depth: None,
        enumerate: false,
        count: false,
        enum_max: 16,
        projection: Projection::default(),
        mode: "ja".into(),
        affinity: AffinityMetric::default(),
        threads: 2,
        schedule: SchedulePolicy::Steal,
        backend: BackendChoice::default(),
        per_property: None,
        total: None,
        property_timeout: None,
        retries: None,
        fault_plan: None,
        fault_seed: 0,
        lifting: Lifting::Ignore,
        reuse: true,
        trace_out: None,
        metrics: false,
        json_out: None,
        feature_store: None,
        cost_model: None,
        verdict_cache: None,
        check_trace: None,
        witness_dir: None,
        validate: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "-h" | "--help" => return Err(String::new()),
            "-q" | "--quiet" => cli.quiet = true,
            "--validate" => cli.validate = true,
            "--no-reuse" => cli.reuse = false,
            "--mode" => cli.mode = value("--mode")?,
            "--affinity" => cli.affinity = value("--affinity")?.parse()?,
            "--backend" => cli.backend = value("--backend")?.parse()?,
            "--threads" => {
                cli.threads = value("--threads")?
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "invalid --threads (need an integer >= 1)".to_string())?
            }
            "--schedule" => cli.schedule = value("--schedule")?.parse()?,
            "--per-property" => {
                let secs: f64 = value("--per-property")?
                    .parse()
                    .map_err(|_| "invalid --per-property".to_string())?;
                cli.per_property = Some(Duration::from_secs_f64(secs));
            }
            "--total" => {
                let secs: f64 = value("--total")?
                    .parse()
                    .map_err(|_| "invalid --total".to_string())?;
                cli.total = Some(Duration::from_secs_f64(secs));
            }
            "--property-timeout" => {
                let secs: f64 = value("--property-timeout")?
                    .parse()
                    .ok()
                    .filter(|&s: &f64| s > 0.0 && s.is_finite())
                    .ok_or_else(|| {
                        "invalid --property-timeout (need seconds as a positive number, \
                         e.g. --property-timeout 2.5)"
                            .to_string()
                    })?;
                cli.property_timeout = Some(Duration::from_secs_f64(secs));
            }
            "--retries" => {
                cli.retries = Some(value("--retries")?.parse().map_err(|_| {
                    "invalid --retries (need an integer >= 0, e.g. --retries 2)".to_string()
                })?)
            }
            "--fault-plan" => cli.fault_plan = Some(value("--fault-plan")?),
            "--fault-seed" => {
                cli.fault_seed = value("--fault-seed")?.parse().map_err(|_| {
                    "invalid --fault-seed (need an integer, e.g. --fault-seed 7)".to_string()
                })?
            }
            "--lifting" => {
                cli.lifting = match value("--lifting")?.as_str() {
                    "ignore" => Lifting::Ignore,
                    "respect" => Lifting::Respect,
                    other => return Err(format!("unknown lifting mode '{other}'")),
                }
            }
            "--gen" => cli.gen = Some(value("--gen")?),
            "--mine" => cli.mine = true,
            "--enum" => cli.enumerate = true,
            "--count" => cli.count = true,
            "--enum-max" => {
                cli.enum_max = value("--enum-max")?
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "invalid --enum-max (need an integer >= 1)".to_string())?
            }
            "--projection" => cli.projection = value("--projection")?.parse()?,
            "--mine-depth" => {
                cli.mine_depth = Some(
                    value("--mine-depth")?
                        .parse()
                        .ok()
                        .filter(|&k| k >= 1)
                        .ok_or_else(|| "invalid --mine-depth (need an integer >= 1)".to_string())?,
                )
            }
            "--trace-out" => cli.trace_out = Some(value("--trace-out")?),
            "--metrics" => cli.metrics = true,
            "--json" => cli.json_out = Some(value("--json")?),
            "--feature-store" => cli.feature_store = Some(value("--feature-store")?),
            "--cost-model" => cli.cost_model = Some(value("--cost-model")?),
            "--verdict-cache" => cli.verdict_cache = Some(value("--verdict-cache")?),
            "--check-trace" => cli.check_trace = Some(value("--check-trace")?),
            "--witness-dir" => cli.witness_dir = Some(value("--witness-dir")?),
            other if other.starts_with('-') => return Err(format!("unknown option '{other}'")),
            path => {
                if !cli.path.is_empty() {
                    return Err("more than one design file given".into());
                }
                cli.path = path.to_string();
            }
        }
    }
    if !MODES.contains(&cli.mode.as_str()) {
        return Err(format!(
            "unknown mode '{}' (available: {})",
            cli.mode,
            MODES.join(", ")
        ));
    }
    if cli.check_trace.is_some() {
        return Ok(cli);
    }
    if cli.path.is_empty() && cli.gen.is_none() {
        return Err("no design file given (or use --gen <family>)".into());
    }
    if !cli.path.is_empty() && cli.gen.is_some() {
        return Err("give either a design file or --gen, not both".into());
    }
    if cli.mine_depth.is_some() && !cli.mine {
        return Err("--mine-depth only makes sense with --mine".into());
    }
    Ok(cli)
}

/// The enumeration options implied by the flags, or `None` when
/// neither `--enum` nor `--count` was given.
fn enum_options(cli: &Cli, journal: &Journal) -> Option<EnumOptions> {
    if !cli.enumerate && !cli.count {
        return None;
    }
    let mut opts = EnumOptions::new()
        .enumerate(cli.enumerate)
        .count(cli.count)
        .max_cexes(cli.enum_max)
        .projection(cli.projection)
        .backend(cli.backend)
        .journal(journal.clone());
    if let Some(n) = cli.retries {
        opts = opts.retries(n);
    }
    Some(opts)
}

fn load_design(cli: &Cli) -> Result<TransitionSystem, String> {
    if let Some(family) = &cli.gen {
        return Ok(japrove::genbench::resolve_spec(family)?.generate().sys);
    }
    let bytes = std::fs::read(&cli.path).map_err(|e| format!("cannot read {}: {e}", cli.path))?;
    let model = japrove::aig::read_aiger(&bytes).map_err(|e| e.to_string())?;
    if model.bads.is_empty() && !cli.mine {
        return Err("design has no bad-state properties (B section)".into());
    }
    let name = std::path::Path::new(&cli.path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("design")
        .to_string();
    Ok(TransitionSystem::from_aiger(name, model))
}

fn run(cli: &Cli, journal: &Journal) -> Result<(MultiReport, TransitionSystem), String> {
    let sys = load_design(cli)?;

    let mut sep = SeparateOptions::local()
        .lifting(cli.lifting)
        .reuse(cli.reuse)
        .backend(cli.backend)
        .journal(journal.clone());
    if let Some(d) = cli.per_property {
        sep = sep.per_property_timeout(d);
    }
    if let Some(d) = cli.total {
        sep = sep.total_timeout(d);
    }
    if let Some(d) = cli.property_timeout {
        sep = sep.watchdog(d);
    }
    if let Some(n) = cli.retries {
        sep = sep.retries(n);
    }
    let mut joint = JointOptions::new()
        .backend(cli.backend)
        .journal(journal.clone());
    if let Some(d) = cli.total {
        joint = joint.total_timeout(d);
    }
    let global = |mut opts: SeparateOptions| {
        opts.scope = japrove::core::Scope::Global;
        opts
    };

    // The cost model reads from --cost-model when given, else from the
    // --feature-store file, so a store that is being written warms the
    // very next run without extra flags.
    let model_store = match cli.cost_model.as_ref().or(cli.feature_store.as_ref()) {
        Some(path) => {
            let (store, skipped) = FeatureStore::load_lossy(path)
                .map_err(|e| format!("cannot read feature store {path}: {e}"))?;
            if skipped > 0 {
                eprintln!("warning: feature store {path}: skipped {skipped} malformed records");
            }
            Some(store)
        }
        None => None,
    };
    let mut cache_slot = match &cli.verdict_cache {
        Some(path) => {
            let (cache, skipped) = VerdictCache::load_lossy(path)
                .map_err(|e| format!("cannot read verdict cache {path}: {e}"))?;
            if skipped > 0 {
                eprintln!("warning: verdict cache {path}: skipped {skipped} malformed entries");
            }
            Some(cache)
        }
        None => None,
    };

    let _run_span = journal.span_labeled(Phase::Run, cli.mode.as_str());
    // Every Session-backed mode funnels through one closure so the mine
    // path (which verifies the *mined* system) shares the exact same
    // wiring: the cost model keys off whichever system is verified.
    let enum_opts = enum_options(cli, journal);
    let mut verify = |sys: &TransitionSystem| match cli.mode.as_str() {
        "grouped" => {
            // The grouped baseline predates the Session pipeline; run
            // the post-verdict pass directly on its report.
            let mut report = grouped_verify(sys, &GroupingOptions::new().joint(joint.clone()));
            if let Some(opts) = &enum_opts {
                report.enumerations = enumerate_report(sys, &report, opts);
            }
            report
        }
        mode => {
            let mut session = match mode {
                "ja" => Session::separate(sep.clone()),
                "separate-global" => Session::separate(global(sep.clone())),
                "joint" => Session::joint(joint.clone()),
                "clustered" => {
                    let opts = ClusteredOptions::new()
                        .metric(cli.affinity)
                        .separate(global(sep.clone()))
                        .backend(cli.backend)
                        .journal(journal.clone());
                    Session::clustered(opts, cli.threads)
                }
                "parallel" => Session::parallel(sep.clone(), cli.threads).schedule(cli.schedule),
                "parallel-global" => {
                    Session::parallel(global(sep.clone()), cli.threads).schedule(cli.schedule)
                }
                other => unreachable!("mode '{other}' slipped past validation"),
            };
            if let Some(store) = &model_store {
                session = session.cost_model(CostModel::from_store(store, sys));
            }
            if let Some(cache) = cache_slot.take() {
                session = session.verdict_cache(cache);
            }
            if let Some(opts) = &enum_opts {
                session = session.enumeration(opts.clone());
            }
            let report = session.run(sys);
            cache_slot = session.take_verdict_cache();
            report
        }
    };

    let (report, sys) = if cli.mine {
        let k = cli.mine_depth.unwrap_or(2);
        let opts = MineOptions::new()
            .k(k)
            .backend(cli.backend)
            .journal(journal.clone());
        let outcome = mine_verify(&sys, &opts, verify);
        let s = &outcome.mined.stats;
        // One deterministic line the CI smoke job greps; printed even
        // under -q because it is the mining run's headline number.
        println!(
            "mined {} properties from {} ({} candidates, {} sim-killed, {} induction-killed; k={k})",
            s.promoted(),
            sys.name(),
            s.generated(),
            s.sim_killed(),
            s.induction_killed(),
        );
        (outcome.report, outcome.mined.sys)
    } else {
        let report = verify(&sys);
        (report, sys)
    };

    if let Some(path) = &cli.verdict_cache {
        if let Some(cache) = &cache_slot {
            cache
                .save(path)
                .map_err(|e| format!("cannot write verdict cache {path}: {e}"))?;
            let hits = report.results.iter().filter(|r| r.cached).count();
            // Deterministic line the CI schedule-smoke job greps.
            println!("verdict cache {path}: {hits} hits, {} entries", cache.len());
        }
    }
    Ok((report, sys))
}

/// Prints the per-property enumeration/counting lines. Deterministic
/// (the CI enum-smoke job greps them) and printed even under `-q` —
/// they are the pass's headline numbers.
fn print_enumerations(cli: &Cli, report: &MultiReport) {
    if report.enumerations.is_empty() {
        println!("0 enumerable properties");
        return;
    }
    for e in &report.enumerations {
        if e.faulted {
            println!("enumeration of {} faulted (enum_round)", e.name);
            continue;
        }
        if cli.enumerate {
            println!(
                "enumerated {}: {} distinct counterexamples at depth {} over {} {} bits{}{}",
                e.name,
                e.cexes.len(),
                e.depth,
                e.projection_bits,
                e.projection,
                if e.exhausted { " (all)" } else { " (capped)" },
                if e.rejected > 0 {
                    " [replay rejected some!]"
                } else {
                    ""
                },
            );
        }
        if let Some(c) = &e.count {
            if c.exact {
                println!(
                    "counted {}: exactly {} bad {} assignments",
                    e.name, c.lo, e.projection
                );
            } else {
                println!(
                    "counted {}: [{}, {}] bad {} assignments (level {}, {} trials, eps={}, delta={})",
                    e.name, c.lo, c.hi, e.projection, c.level, c.trials, c.epsilon, c.delta
                );
            }
        }
    }
}

/// Renders the report (with each property's engine and SAT counters)
/// as a single JSON document.
fn report_json(report: &MultiReport) -> Value {
    let int = |x: u64| Value::Int(x as i64);
    let props: Vec<Value> = report
        .results
        .iter()
        .map(|r| {
            let verdict = if r.holds() {
                "holds"
            } else if r.fails() {
                "fails"
            } else {
                "unknown"
            };
            let s = &r.stats;
            Value::Obj(vec![
                ("name".into(), Value::Str(r.name.clone())),
                ("verdict".into(), Value::Str(verdict.into())),
                ("scope".into(), Value::Str(r.scope.to_string())),
                ("time_us".into(), int(r.time.as_micros() as u64)),
                ("frames".into(), int(r.frames as u64)),
                ("retried".into(), Value::Bool(r.retried)),
                ("cached".into(), Value::Bool(r.cached)),
                ("backend".into(), Value::Str(r.backend.to_string())),
                (
                    "stats".into(),
                    Value::Obj(vec![
                        ("queries".into(), int(s.queries)),
                        ("clauses".into(), int(s.clauses as u64)),
                        ("obligations".into(), int(s.obligations)),
                        ("generalized_lits".into(), int(s.generalized_lits)),
                        ("solves".into(), int(s.sat.solves)),
                        ("decisions".into(), int(s.sat.decisions)),
                        ("propagations".into(), int(s.sat.propagations)),
                        ("conflicts".into(), int(s.sat.conflicts)),
                        ("learnt_clauses".into(), int(s.sat.learnt_clauses)),
                        ("deleted_clauses".into(), int(s.sat.deleted_clauses)),
                        ("restarts".into(), int(s.sat.restarts)),
                    ]),
                ),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("design".into(), Value::Str(report.design.clone())),
        ("method".into(), Value::Str(report.method.clone())),
        (
            "total_time_us".into(),
            int(report.total_time.as_micros() as u64),
        ),
        ("num_true".into(), int(report.num_true() as u64)),
        ("num_false".into(), int(report.num_false() as u64)),
        ("num_unsolved".into(), int(report.num_unsolved() as u64)),
        ("properties".into(), Value::Arr(props)),
        (
            "enumerations".into(),
            Value::Arr(
                report
                    .enumerations
                    .iter()
                    .map(|e| {
                        let mut obj = vec![
                            ("name".into(), Value::Str(e.name.clone())),
                            ("depth".into(), int(e.depth as u64)),
                            ("projection".into(), Value::Str(e.projection.to_string())),
                            ("projection_bits".into(), int(e.projection_bits as u64)),
                            ("distinct".into(), int(e.cexes.len() as u64)),
                            ("exhausted".into(), Value::Bool(e.exhausted)),
                            ("faulted".into(), Value::Bool(e.faulted)),
                        ];
                        if let Some(c) = &e.count {
                            obj.push((
                                "count".into(),
                                Value::Obj(vec![
                                    ("lo".into(), int(c.lo)),
                                    ("hi".into(), int(c.hi)),
                                    ("exact".into(), Value::Bool(c.exact)),
                                    ("level".into(), int(c.level as u64)),
                                    ("trials".into(), int(c.trials as u64)),
                                    ("epsilon".into(), Value::Num(c.epsilon)),
                                    ("delta".into(), Value::Num(c.delta)),
                                ]),
                            ));
                        }
                        Value::Obj(obj)
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Merges this run's per-property records into the JSONL feature store
/// at `path`.
fn update_feature_store(
    path: &str,
    sys: &TransitionSystem,
    report: &MultiReport,
    mode: &str,
) -> Result<usize, String> {
    let (mut store, skipped) = FeatureStore::load_lossy(path).map_err(|e| e.to_string())?;
    if skipped > 0 {
        eprintln!("warning: feature store {path}: skipped {skipped} malformed records");
    }
    let design = format!("{:016x}", sys.structural_hash());
    // Cache hits cost ~no solver time; recording them would teach the
    // cost model that the property is free. Only fresh runs train it.
    for r in report.results.iter().filter(|r| !r.cached) {
        let verdict = if r.holds() {
            "holds"
        } else if r.fails() {
            "fails"
        } else {
            "unknown"
        };
        store.upsert(RunRecord {
            design: design.clone(),
            property: r.name.clone(),
            mode: mode.to_string(),
            verdict: verdict.into(),
            time_us: r.time.as_micros() as u64,
            frames: r.frames as u64,
            conflicts: r.stats.sat.conflicts,
            decisions: r.stats.sat.decisions,
            propagations: r.stats.sat.propagations,
            restarts: r.stats.sat.restarts,
        });
    }
    store.save(path).map_err(|e| e.to_string())?;
    Ok(store.len())
}

/// The `--check-trace` mode: parse a JSONL trace strictly, rejecting
/// unknown event kinds; the CI smoke job gates on the exit code.
fn check_trace(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match parse_jsonl(&text) {
        Ok(events) => {
            println!("trace ok: {} events", events.len());
            ExitCode::SUCCESS
        }
        Err((line, e)) => {
            eprintln!("trace invalid at line {line}: {e}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &cli.check_trace {
        return check_trace(path);
    }

    // Arm the chaos harness: an explicit --fault-plan wins over the
    // JAPROVE_FAULT_PLAN env bootstrap (which reaches processes that
    // grew no flag, like the benches).
    let plan = match &cli.fault_plan {
        Some(spec) => japrove::obs::fault::FaultPlan::parse(spec, cli.fault_seed).map(Some),
        None => japrove::obs::fault::FaultPlan::from_env(),
    };
    match plan {
        Ok(Some(plan)) => japrove::obs::fault::install(plan),
        Ok(None) => {}
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    }

    // A journal costs one pointer check per call when disabled; only
    // allocate the real thing when some sink will consume it.
    let journal = if cli.trace_out.is_some() || cli.metrics {
        Journal::new()
    } else {
        Journal::disabled()
    };
    let (report, sys) = match run(&cli, &journal) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &cli.trace_out {
        let write = std::fs::File::create(path)
            .map_err(|e| e.to_string())
            .and_then(|mut f| journal.write_jsonl(&mut f).map_err(|e| e.to_string()));
        match write {
            Ok(()) => eprintln!("trace written to {path}"),
            Err(e) => {
                eprintln!("error writing trace {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if cli.metrics {
        let events = journal.events();
        let rows = phase_breakdown(&events);
        println!(
            "{}",
            render_breakdown(&rows, report.total_time.as_micros() as u64)
        );
    }
    if let Some(path) = &cli.json_out {
        let doc = report_json(&report);
        if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
            eprintln!("error writing report {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("report written to {path}");
    }
    if let Some(path) = &cli.feature_store {
        match update_feature_store(path, &sys, &report, &cli.mode) {
            Ok(n) => eprintln!("feature store {path}: {n} records"),
            Err(e) => {
                eprintln!("error updating feature store {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if cli.quiet {
        println!("{}", report.summary());
    } else {
        println!("{report}");
        let debug_set: Vec<String> = report
            .debugging_set()
            .iter()
            .map(|&p| sys.property(p).name.clone())
            .collect();
        if !debug_set.is_empty() {
            println!("debugging set (fix these first): {debug_set:?}");
        }
    }
    if cli.enumerate || cli.count {
        print_enumerations(&cli, &report);
    }

    if let Some(dir) = &cli.witness_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {dir}: {e}");
            return ExitCode::from(2);
        }
        for r in &report.results {
            if let Some(cex) = r.counterexample() {
                let path = format!("{dir}/{}.cex", r.name);
                match std::fs::File::create(&path) {
                    Ok(mut f) => {
                        if let Err(e) = write_witness(&mut f, &sys, r.id, &cex.trace) {
                            eprintln!("error writing {path}: {e}");
                        }
                    }
                    Err(e) => eprintln!("error creating {path}: {e}"),
                }
            }
        }
    }

    if cli.validate {
        let assumed = local_assumptions(&sys);
        match validate_debugging_set(&sys, &report, &assumed) {
            Ok(()) => eprintln!("validation: debugging-set guarantees hold"),
            Err(e) => {
                eprintln!("validation FAILED: {e}");
                return ExitCode::from(3);
            }
        }
    }

    // Exit code 0: all hold; 1: some property fails; 4: unsolved left.
    if report.num_false() > 0 {
        ExitCode::from(1)
    } else if report.num_unsolved() > 0 {
        ExitCode::from(4)
    } else {
        ExitCode::SUCCESS
    }
}
