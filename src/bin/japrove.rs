//! The japrove command-line front-end: the equivalent of the paper's
//! `Ja-ver`/`Jnt-ver` driver scripts (§7).
//!
//! Reads a (multi-property) AIGER design, runs the selected
//! verification mode and prints a per-property report plus the
//! debugging set; optionally writes AIGER witnesses for every failing
//! property.

use japrove::core::{
    grouped_verify, ja_verify, joint_verify, local_assumptions, parallel_clustered_verify,
    parallel_ja_verify_with, separate_verify, validate_debugging_set, AffinityMetric,
    ClusteredOptions, GroupingOptions, JointOptions, MultiReport, ParallelMode, SeparateOptions,
};
use japrove::ic3::Lifting;
use japrove::sat::BackendChoice;
use japrove::tsys::{write_witness, TransitionSystem};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
japrove — multi-property model checking with JA-verification (DATE'18)

USAGE:
    japrove [OPTIONS] <design.aag|design.aig>

OPTIONS:
    --mode <ja|joint|separate-global|grouped|clustered|parallel|parallel-global>
                              verification driver [default: ja]
    --affinity <jaccard|hybrid> affinity metric for --mode clustered
                              [default: hybrid]
    --threads <N>             workers for the parallel and clustered
                              modes [default: 2]
    --schedule <steal|fifo>   parallel dispatch: incremental work-stealing
                              or the cold FIFO baseline [default: steal]
    --backend <cdcl|chrono>   SAT backend for every engine run
                              [default: cdcl]
    --per-property <SECS>     time limit per property
    --total <SECS>            time limit for the whole design
    --lifting <ignore|respect> state-lifting mode (§7-A) [default: ignore]
    --no-reuse                disable clause re-use (§6)
    --witness-dir <DIR>       write AIGER witnesses for failing properties
    --validate                re-check the debugging-set guarantees
    -q, --quiet               only print the summary line
    -h, --help                show this help
";

struct Cli {
    path: String,
    mode: String,
    affinity: AffinityMetric,
    threads: usize,
    schedule: ParallelMode,
    backend: BackendChoice,
    per_property: Option<Duration>,
    total: Option<Duration>,
    lifting: Lifting,
    reuse: bool,
    witness_dir: Option<String>,
    validate: bool,
    quiet: bool,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        path: String::new(),
        mode: "ja".into(),
        affinity: AffinityMetric::default(),
        threads: 2,
        schedule: ParallelMode::Incremental,
        backend: BackendChoice::default(),
        per_property: None,
        total: None,
        lifting: Lifting::Ignore,
        reuse: true,
        witness_dir: None,
        validate: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "-h" | "--help" => return Err(String::new()),
            "-q" | "--quiet" => cli.quiet = true,
            "--validate" => cli.validate = true,
            "--no-reuse" => cli.reuse = false,
            "--mode" => cli.mode = value("--mode")?,
            "--affinity" => cli.affinity = value("--affinity")?.parse()?,
            "--backend" => cli.backend = value("--backend")?.parse()?,
            "--threads" => {
                cli.threads = value("--threads")?
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "invalid --threads (need an integer >= 1)".to_string())?
            }
            "--schedule" => {
                cli.schedule = match value("--schedule")?.as_str() {
                    "steal" => ParallelMode::Incremental,
                    "fifo" => ParallelMode::ColdFifo,
                    other => return Err(format!("unknown schedule '{other}'")),
                }
            }
            "--per-property" => {
                let secs: f64 = value("--per-property")?
                    .parse()
                    .map_err(|_| "invalid --per-property".to_string())?;
                cli.per_property = Some(Duration::from_secs_f64(secs));
            }
            "--total" => {
                let secs: f64 = value("--total")?
                    .parse()
                    .map_err(|_| "invalid --total".to_string())?;
                cli.total = Some(Duration::from_secs_f64(secs));
            }
            "--lifting" => {
                cli.lifting = match value("--lifting")?.as_str() {
                    "ignore" => Lifting::Ignore,
                    "respect" => Lifting::Respect,
                    other => return Err(format!("unknown lifting mode '{other}'")),
                }
            }
            "--witness-dir" => cli.witness_dir = Some(value("--witness-dir")?),
            other if other.starts_with('-') => return Err(format!("unknown option '{other}'")),
            path => {
                if !cli.path.is_empty() {
                    return Err("more than one design file given".into());
                }
                cli.path = path.to_string();
            }
        }
    }
    if cli.path.is_empty() {
        return Err("no design file given".into());
    }
    Ok(cli)
}

fn run(cli: &Cli) -> Result<(MultiReport, TransitionSystem), String> {
    let bytes = std::fs::read(&cli.path).map_err(|e| format!("cannot read {}: {e}", cli.path))?;
    let model = japrove::aig::read_aiger(&bytes).map_err(|e| e.to_string())?;
    if model.bads.is_empty() {
        return Err("design has no bad-state properties (B section)".into());
    }
    let name = std::path::Path::new(&cli.path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("design")
        .to_string();
    let sys = TransitionSystem::from_aiger(name, model);

    let mut sep = SeparateOptions::local()
        .lifting(cli.lifting)
        .reuse(cli.reuse)
        .backend(cli.backend);
    if let Some(d) = cli.per_property {
        sep = sep.per_property_timeout(d);
    }
    if let Some(d) = cli.total {
        sep = sep.total_timeout(d);
    }
    let mut joint = JointOptions::new().backend(cli.backend);
    if let Some(d) = cli.total {
        joint = joint.total_timeout(d);
    }
    let global = |mut opts: SeparateOptions| {
        opts.scope = japrove::core::Scope::Global;
        opts
    };

    let report = match cli.mode.as_str() {
        "ja" => ja_verify(&sys, &sep),
        "separate-global" => separate_verify(&sys, &global(sep.clone())),
        "joint" => joint_verify(&sys, &joint),
        "grouped" => grouped_verify(&sys, &GroupingOptions::new().joint(joint)),
        "clustered" => {
            let opts = ClusteredOptions::new()
                .metric(cli.affinity)
                .separate(global(sep.clone()))
                .backend(cli.backend);
            parallel_clustered_verify(&sys, cli.threads, &opts)
        }
        "parallel" => parallel_ja_verify_with(&sys, cli.threads, &sep, cli.schedule),
        "parallel-global" => {
            parallel_ja_verify_with(&sys, cli.threads, &global(sep.clone()), cli.schedule)
        }
        other => return Err(format!("unknown mode '{other}'")),
    };
    Ok((report, sys))
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let (report, sys) = match run(&cli) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };

    if cli.quiet {
        println!("{}", report.summary());
    } else {
        println!("{report}");
        let debug_set: Vec<String> = report
            .debugging_set()
            .iter()
            .map(|&p| sys.property(p).name.clone())
            .collect();
        if !debug_set.is_empty() {
            println!("debugging set (fix these first): {debug_set:?}");
        }
    }

    if let Some(dir) = &cli.witness_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {dir}: {e}");
            return ExitCode::from(2);
        }
        for r in &report.results {
            if let Some(cex) = r.counterexample() {
                let path = format!("{dir}/{}.cex", r.name);
                match std::fs::File::create(&path) {
                    Ok(mut f) => {
                        if let Err(e) = write_witness(&mut f, &sys, r.id, &cex.trace) {
                            eprintln!("error writing {path}: {e}");
                        }
                    }
                    Err(e) => eprintln!("error creating {path}: {e}"),
                }
            }
        }
    }

    if cli.validate {
        let assumed = local_assumptions(&sys);
        match validate_debugging_set(&sys, &report, &assumed) {
            Ok(()) => eprintln!("validation: debugging-set guarantees hold"),
            Err(e) => {
                eprintln!("validation FAILED: {e}");
                return ExitCode::from(3);
            }
        }
    }

    // Exit code 0: all hold; 1: some property fails; 4: unsolved left.
    if report.num_false() > 0 {
        ExitCode::from(1)
    } else if report.num_unsolved() > 0 {
        ExitCode::from(4)
    } else {
        ExitCode::SUCCESS
    }
}
