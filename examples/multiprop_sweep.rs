//! Joint vs JA-verification on a generated multi-property design.
//!
//! Generates an HWMCC-style design with trues, shallow failures and
//! shadowed deep failures, then compares the three drivers the paper
//! evaluates: joint verification, separate verification with global
//! proofs, and JA-verification.
//!
//! ```sh
//! cargo run --release --example multiprop_sweep
//! ```

use japrove::core::{ja_verify, joint_verify, separate_verify, JointOptions, SeparateOptions};
use japrove::genbench::FamilyParams;
use std::time::{Duration, Instant};

fn main() {
    let design = FamilyParams::new("sweep_demo", 7)
        .chain(8, 8)
        .easy_true(6)
        .ring(6, 6)
        .shallow_fails(vec![2, 4])
        .shadow_group(3, vec![30, 45, 60])
        .generate();
    let sys = &design.sys;
    println!(
        "design '{}': {} latches, {} inputs, {} properties",
        sys.name(),
        sys.num_latches(),
        sys.num_inputs(),
        sys.num_properties()
    );
    println!(
        "ground truth: {} globally false, debugging set of {}\n",
        design.expected_global_failures(),
        design.expected_debugging_set().len()
    );

    let t0 = Instant::now();
    let joint = joint_verify(
        sys,
        &JointOptions::new().total_timeout(Duration::from_secs(60)),
    );
    println!(
        "joint verification:    {:>8.3}s  {} false, {} true, {} unsolved",
        t0.elapsed().as_secs_f64(),
        joint.num_false(),
        joint.num_true(),
        joint.num_unsolved()
    );

    let t0 = Instant::now();
    let global = separate_verify(
        sys,
        &SeparateOptions::global().per_property_timeout(Duration::from_secs(5)),
    );
    println!(
        "separate (global):     {:>8.3}s  {} false, {} true, {} unsolved",
        t0.elapsed().as_secs_f64(),
        global.num_false(),
        global.num_true(),
        global.num_unsolved()
    );

    let t0 = Instant::now();
    let ja = ja_verify(
        sys,
        &SeparateOptions::local().per_property_timeout(Duration::from_secs(5)),
    );
    println!(
        "ja-verification:       {:>8.3}s  {} false (the debugging set), {} true locally",
        t0.elapsed().as_secs_f64(),
        ja.num_false(),
        ja.num_true()
    );

    let debug_set: Vec<String> = ja
        .debugging_set()
        .iter()
        .map(|p| sys.property(*p).name.clone())
        .collect();
    println!("\ndebugging set (fix these first): {debug_set:?}");
    assert_eq!(
        ja.debugging_set(),
        design.expected_debugging_set(),
        "JA found exactly the ground-truth debugging set"
    );
}
