//! AIGER interchange: export a generated design, read it back, verify.
//!
//! Shows the HWMCC-compatible flow: designs round-trip through binary
//! AIGER 1.9 (with `B` bad-state properties and the symbol table), so
//! japrove can exchange benchmarks with ABC, aiger tools and other
//! model checkers.
//!
//! ```sh
//! cargo run --release --example aiger_io
//! ```

use japrove::aig::{read_aiger, write_aiger_ascii, write_aiger_binary};
use japrove::core::{ja_verify, SeparateOptions};
use japrove::genbench::FamilyParams;
use japrove::tsys::TransitionSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = FamilyParams::new("aiger_demo", 3)
        .easy_true(2)
        .chain(3, 6)
        .shallow_fails(vec![3])
        .generate();

    // Write binary AIGER (the HWMCC format) and ASCII for inspection.
    let model = design.sys.to_aiger();
    let mut binary = Vec::new();
    write_aiger_binary(&mut binary, &model)?;
    let mut ascii = Vec::new();
    write_aiger_ascii(&mut ascii, &model)?;
    println!(
        "exported '{}': {} bytes binary aig, {} bytes ascii aag, {} properties",
        design.sys.name(),
        binary.len(),
        ascii.len(),
        model.bads.len()
    );
    println!("--- aag header ---");
    for line in std::str::from_utf8(&ascii)?.lines().take(4) {
        println!("{line}");
    }

    // Read back and verify: verdicts must match the original design.
    let back = TransitionSystem::from_aiger("aiger_demo_reread", read_aiger(&binary)?);
    assert_eq!(back.num_properties(), design.sys.num_properties());

    let original = ja_verify(&design.sys, &SeparateOptions::local());
    let reread = ja_verify(&back, &SeparateOptions::local());
    for (a, b) in original.results.iter().zip(&reread.results) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.holds(), b.holds(), "{}", a.name);
        assert_eq!(a.fails(), b.fails(), "{}", a.name);
    }
    println!(
        "\nround-trip verified: {} verdicts identical (debugging set {:?})",
        reread.results.len(),
        reread
            .debugging_set()
            .iter()
            .map(|p| back.property(*p).name.clone())
            .collect::<Vec<_>>()
    );
    Ok(())
}
