//! Expected-To-Fail properties (§5).
//!
//! An ETF property encodes a reachability goal: its "counterexample"
//! is the desired witness. JA-verification must not suppress it by
//! assuming other properties that would exclude the witness — so ETF
//! properties are removed from the assumption set.
//!
//! ```sh
//! cargo run --release --example etf_properties
//! ```

use japrove::core::{ja_verify, local_assumptions, SeparateOptions};
use japrove::tsys::{Expectation, TransitionSystem, Word};

fn main() {
    // A counter with a handshake flag that rises at value 12.
    let mut aig = japrove::aig::Aig::new();
    let count = Word::latches(&mut aig, 5, 0);
    let next = count.increment(&mut aig);
    count.set_next(&mut aig, &next);
    let at12 = count.eq_const(&mut aig, 12);
    let in_range = count.lt_const(&mut aig, 32);

    let mut sys = TransitionSystem::new("handshake", aig);
    let p_range = sys.add_property("count_in_range", in_range);
    // Reachability goal phrased as an ETF safety property: "the flag
    // never rises" is *expected to fail*, and the counterexample is the
    // witness that value 12 is reachable.
    let p_goal = sys.add_property_with("never_reaches_12", !at12, Expectation::Fail);

    // ETF properties are excluded from the assumption set:
    let assumed = local_assumptions(&sys);
    assert_eq!(assumed, vec![p_range]);
    println!("assumption set: {:?} (ETF goal excluded)", assumed);

    let report = ja_verify(&sys, &SeparateOptions::local());
    println!("{report}");

    let goal = report.result(p_goal).unwrap();
    assert!(goal.fails(), "the goal must produce its witness");
    let witness = goal.counterexample().unwrap();
    println!(
        "reachability witness found: value 12 reached after {} steps",
        witness.depth
    );
    assert_eq!(witness.depth, 12);
    assert!(report.result(p_range).unwrap().holds());
}
