//! Quickstart: build a design, add properties, run JA-verification.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use japrove::core::{ja_verify, local_assumptions, validate_debugging_set, SeparateOptions};
use japrove::tsys::{TransitionSystem, Word};

fn main() {
    // A 6-bit counter driving a small "green light" monitor: the light
    // turns on while the counter is in [8, 16).
    let mut aig = japrove::aig::Aig::new();
    let count = Word::latches(&mut aig, 6, 0);
    let next = count.increment(&mut aig);
    count.set_next(&mut aig, &next);

    let ge8 = count.ge_const(&mut aig, 8);
    let lt16 = count.lt_const(&mut aig, 16);
    let window = aig.and(ge8, lt16);
    let green = aig.add_latch(false);
    aig.set_next(green, window);

    // Three properties of varying truth:
    //  - count_in_range: trivially true;
    //  - never_green:    false, first fails at depth 9;
    //  - green_in_window: "green implies the window is (still) open" —
    //    false (green lags the window by one cycle, so it is still on
    //    at count == 16), but every counterexample passes through a
    //    violation of never_green first.
    let implies_window = aig.or(!green, window);
    let mut sys = TransitionSystem::new("traffic", aig);
    let in_range = count.lt_const(sys.aig_mut(), 64);
    let p_range = sys.add_property("count_in_range", in_range);
    let p_green = sys.add_property("never_green", !green);
    let p_window = sys.add_property("green_in_window", implies_window);

    // JA-verification: each property is checked assuming all others.
    let report = ja_verify(&sys, &SeparateOptions::local());
    println!("{report}");
    println!("debugging set: {:?}", report.debugging_set());

    // The library validates its own guarantees (Props. 2-6).
    let assumed = local_assumptions(&sys);
    validate_debugging_set(&sys, &report, &assumed).expect("debugging-set guarantees hold");

    assert!(report.result(p_range).unwrap().holds());
    assert!(report.result(p_green).unwrap().fails());
    assert!(
        report.result(p_window).unwrap().holds(),
        "green_in_window holds locally: it can never fail first"
    );
    assert_eq!(report.debugging_set(), vec![p_green]);
    println!("ok: JA-verification isolated the first-failing property");
}
