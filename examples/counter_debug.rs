//! The paper's Example 1: the buggy counter, global vs local.
//!
//! Reproduces the §4 narrative: `P0 (req == 1)` fails everywhere,
//! `P1 (val <= rval)` fails globally with an exponentially-deep
//! counterexample — but holds *locally*, proving that P1's failure is
//! a consequence of P0's.
//!
//! ```sh
//! cargo run --release --example counter_debug
//! ```

use japrove::core::{ja_verify, SeparateOptions};
use japrove::genbench::buggy_counter;
use japrove::ic3::{CheckOutcome, Ic3, Ic3Options};
use japrove::sat::Budget;
use japrove::tsys::replay;
use std::time::{Duration, Instant};

fn main() {
    for bits in [4usize, 6, 8, 10] {
        let (sys, props) = buggy_counter(bits);
        let rval = 1u64 << (bits - 1);

        // Global proof of P1: the counterexample must count all the
        // way to rval + 1.
        let t0 = Instant::now();
        let opts = Ic3Options::new().budget(Budget::timeout(Duration::from_secs(20)));
        let global = Ic3::new(&sys, props.p1, opts).run();
        let global_time = t0.elapsed();
        let global_desc = match &global {
            CheckOutcome::Falsified(cex) => {
                let r = replay(&sys, &cex.trace).expect("valid");
                assert!(r.violates_finally(props.p1));
                format!("counterexample of depth {}", cex.depth)
            }
            other => format!("{other}"),
        };

        // JA-verification: P1 holds locally in milliseconds,
        // independent of the width.
        let t0 = Instant::now();
        let report = ja_verify(&sys, &SeparateOptions::local());
        let local_time = t0.elapsed();

        println!(
            "{:>2}-bit counter (rval = {:>4}):  global P1: {} in {:>8.3}s | JA: debugging set {:?}, P1 {} locally, {:>6.3}s",
            bits,
            rval,
            global_desc,
            global_time.as_secs_f64(),
            report
                .debugging_set()
                .iter()
                .map(|p| sys.property(*p).name.clone())
                .collect::<Vec<_>>(),
            if report.result(props.p1).unwrap().holds() {
                "holds"
            } else {
                "fails"
            },
            local_time.as_secs_f64(),
        );
        assert_eq!(report.debugging_set(), vec![props.p0]);
    }
    println!("\nThe wrong assumption 'req == 1' makes P1 trivially inductive —");
    println!("the benefit of wrong assumptions.");
}
